// Command adafgl-serve serves node-classification queries from a trained
// AdaFGL model checkpoint over HTTP, batching concurrent requests into
// plan-reused propagation windows (see internal/serve).
//
// Usage:
//
//	adafgl-serve -ckpt model.ckpt -addr :8080
//	adafgl-serve -ckpt model.ckpt -batch 128 -batch-wait 1ms -workers 4
//
// Endpoints:
//
//	POST /predict      {"nodes":[0,5]} or {"all":true}
//	GET  /predict?node=3 | /predict?nodes=1,2,3
//	GET  /predict/all
//	GET  /healthz
//	GET  /stats
//
// Produce a checkpoint with examples/quickstart -save, or any training run
// via checkpoint.FromResult.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/parallel"
	"repro/internal/serve"
)

func main() {
	var (
		ckptPath  = flag.String("ckpt", "", "checkpoint file to serve (required)")
		addr      = flag.String("addr", ":8080", "HTTP listen address")
		batch     = flag.Int("batch", serve.DefaultMaxBatch, "max queried nodes coalesced per batch window (1 disables batching)")
		batchWait = flag.Duration("batch-wait", serve.DefaultMaxWait, "max time the first request of a window waits for company (0 = flush as soon as the queue drains)")
		workers   = flag.Int("workers", 0, "parallel worker count (0 = GOMAXPROCS); results are identical for every value")
	)
	flag.Parse()
	parallel.SetWorkers(*workers)
	if *ckptPath == "" {
		fmt.Fprintln(os.Stderr, "missing -ckpt")
		flag.Usage()
		os.Exit(2)
	}

	ck, err := checkpoint.Load(*ckptPath)
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	srv, err := serve.New(ck, serve.Options{MaxBatch: *batch, MaxWait: *batchWait})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	path := "per-window propagation"
	if srv.Decoupled() {
		path = "precomputed-embedding cache"
	}
	log.Printf("serving %s over %d nodes / %d classes (%s, loaded in %v)",
		srv.Arch(), srv.Nodes(), srv.Classes(), path, time.Since(start).Round(time.Millisecond))
	log.Printf("listening on %s (batch window: %d nodes / %v)", *addr, *batch, *batchWait)
	log.Fatal(http.ListenAndServe(*addr, srv.Handler()))
}
