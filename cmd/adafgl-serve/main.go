// Command adafgl-serve serves node-classification queries from trained
// AdaFGL model checkpoints over HTTP. It fronts a model registry
// (internal/registry): one or many checkpoint artifacts keyed by
// name@version, each lazily started as a batching inference server
// (internal/serve) under an LRU bound, with zero-downtime version swaps and
// an A/B traffic splitter.
//
// Usage:
//
//	adafgl-serve -ckpt model.ckpt -addr :8080
//	adafgl-serve -model-dir zoo/ -default-model adafgl
//	adafgl-serve -model-dir zoo/ -batch 128 -batch-wait 1ms -max-loaded 2
//
// -ckpt registers a single artifact (filename stem "name@3.ckpt" carries the
// name and version; a bare stem is version 1). -model-dir scans a directory
// of *.ckpt artifacts. Both may be combined.
//
// Endpoints (see internal/registry for the full contract):
//
//	GET  /v1/models                      registered artifacts + metadata
//	GET  /v1/models/{model}/predict      ?node=3 | ?nodes=1,2,3
//	POST /v1/models/{model}/predict      {"nodes":[...]} or {"all":true}
//	GET  /v1/models/{model}/predict/all
//	GET  /v1/models/{model}/stats        per-version counters + live snapshot
//	POST /v1/models/{model}/swap         {"version":2} zero-downtime swap
//	POST /v1/ab                          {"control":...,"candidate":...,"fraction":0.5}
//	GET  /v1/ab/report                   online accuracy/latency per arm
//	GET  /v1/healthz                     fleet liveness
//
//	/predict, /predict/all, /healthz, /stats — deprecated aliases onto the
//	default model (Deprecation + Link headers point at the v1 successors).
//
// On SIGINT/SIGTERM the listener stops accepting, in-flight HTTP requests
// get a grace period, and every model's batch queue is drained before exit —
// no admitted query is dropped.
//
// Produce checkpoints with examples/quickstart -save or examples/model-zoo,
// or any training run via checkpoint.FromResult.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/parallel"
	"repro/internal/registry"
	"repro/internal/serve"
)

func main() {
	var (
		ckptPath     = flag.String("ckpt", "", "single checkpoint file to register (stem \"name@3.ckpt\" sets name and version)")
		modelDir     = flag.String("model-dir", "", "directory of *.ckpt artifacts to register")
		defaultModel = flag.String("default-model", "", "model answering the legacy flat routes (default: the sole registered name)")
		addr         = flag.String("addr", ":8080", "HTTP listen address")
		batch        = flag.Int("batch", serve.DefaultMaxBatch, "max queried nodes coalesced per batch window (1 disables batching)")
		batchWait    = flag.Duration("batch-wait", serve.DefaultMaxWait, "max time the first request of a window waits for company (0 = flush as soon as the queue drains)")
		workers      = flag.Int("workers", 0, "parallel worker count (0 = GOMAXPROCS); results are identical for every value")
		maxLoaded    = flag.Int("max-loaded", registry.DefaultMaxLoaded, "max concurrently started model servers (LRU drains idle ones)")
		grace        = flag.Duration("grace", 10*time.Second, "shutdown grace period for in-flight HTTP requests")
	)
	flag.Parse()
	parallel.SetWorkers(*workers)
	if *ckptPath == "" && *modelDir == "" {
		fmt.Fprintln(os.Stderr, "missing -ckpt or -model-dir")
		flag.Usage()
		os.Exit(2)
	}

	reg := registry.New(registry.Options{
		Serve:        serve.Options{MaxBatch: *batch, MaxWait: *batchWait},
		MaxLoaded:    *maxLoaded,
		DefaultModel: *defaultModel,
	})
	start := time.Now()
	if *modelDir != "" {
		if _, err := reg.LoadDir(*modelDir); err != nil {
			log.Fatal(err)
		}
	}
	if *ckptPath != "" {
		if _, err := reg.AddFile(*ckptPath); err != nil {
			log.Fatal(err)
		}
	}
	infos := reg.List()
	for _, info := range infos {
		active := " "
		if info.Active {
			active = "*"
		}
		log.Printf("%s %s@%d  %-5s %d nodes / %d classes / %d params (%s)",
			active, info.Name, info.Version, info.Arch, info.Nodes, info.Classes,
			info.Params, info.Path)
	}
	log.Printf("registered %d artifacts in %v (max %d loaded, batch window: %d nodes / %v)",
		len(infos), time.Since(start).Round(time.Millisecond), *maxLoaded, *batch, *batchWait)

	httpSrv := &http.Server{Addr: *addr, Handler: reg.Handler()}
	ctx, cancel := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer cancel()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("listening on %s", *addr)

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}

	// Graceful shutdown: stop accepting, give in-flight HTTP requests a
	// deadline, then drain every model's batch queue via the registry.
	log.Printf("shutting down (grace %v)", *grace)
	shutCtx, shutCancel := context.WithTimeout(context.Background(), *grace)
	defer shutCancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("shutdown: %v", err)
	}
	reg.Close()
	log.Printf("drained; bye")
}
