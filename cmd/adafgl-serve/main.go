// Command adafgl-serve serves node-classification queries from trained
// AdaFGL model checkpoints over HTTP. It fronts a model registry
// (internal/registry): one or many checkpoint artifacts keyed by
// name@version, each lazily started as a batching inference server
// (internal/serve) under an LRU bound, with zero-downtime version swaps and
// an A/B traffic splitter.
//
// Usage:
//
//	adafgl-serve -ckpt model.ckpt -addr :8080
//	adafgl-serve -model-dir zoo/ -default-model adafgl
//	adafgl-serve -model-dir zoo/ -batch 128 -batch-wait 1ms -max-loaded 2
//
// -ckpt registers a single artifact (filename stem "name@3.ckpt" carries the
// name and version; a bare stem is version 1). -model-dir scans a directory
// of *.ckpt artifacts. Both may be combined. The directory scan is lenient by
// default: unreadable or corrupt artifacts are quarantined (logged at
// startup, listed under "quarantined" in GET /v1/models) and the healthy rest
// serve; -strict-scan restores fail-fast startup.
//
// Resilience knobs: -max-pending bounds the per-model admission queue (excess
// requests shed with 503 + Retry-After), -request-timeout enforces a
// server-side deadline (504), and -breaker-threshold/-breaker-backoff/
// -breaker-max-backoff govern the per-model circuit breaker (consecutive
// failures trip the model; it fails fast with 503 until a jittered,
// exponentially growing window elapses and a half-open probe succeeds).
// -read-header-timeout, -read-timeout and -idle-timeout harden the listener
// against slow or stuck connections.
//
// Endpoints (see internal/registry for the full contract):
//
//	GET  /v1/models                      registered artifacts + metadata
//	GET  /v1/models/{model}/predict      ?node=3 | ?nodes=1,2,3
//	POST /v1/models/{model}/predict      {"nodes":[...]} or {"all":true}
//	GET  /v1/models/{model}/predict/all
//	GET  /v1/models/{model}/stats        per-version counters + live snapshot
//	POST /v1/models/{model}/swap         {"version":2} zero-downtime swap
//	POST /v1/ab                          {"control":...,"candidate":...,"fraction":0.5}
//	GET  /v1/ab/report                   online accuracy/latency per arm
//	GET  /v1/healthz                     fleet liveness (always 200) + readiness summary
//	GET  /v1/readyz                      readiness probe (503 until something can serve)
//
//	/predict, /predict/all, /healthz, /stats — deprecated aliases onto the
//	default model (Deprecation + Link headers point at the v1 successors).
//
// On SIGINT/SIGTERM the listener stops accepting, in-flight HTTP requests
// get a grace period, and every model's batch queue is drained before exit —
// no admitted query is dropped.
//
// Produce checkpoints with examples/quickstart -save or examples/model-zoo,
// or any training run via checkpoint.FromResult.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/parallel"
	"repro/internal/registry"
	"repro/internal/serve"
)

func main() {
	var (
		ckptPath     = flag.String("ckpt", "", "single checkpoint file to register (stem \"name@3.ckpt\" sets name and version)")
		modelDir     = flag.String("model-dir", "", "directory of *.ckpt artifacts to register")
		defaultModel = flag.String("default-model", "", "model answering the legacy flat routes (default: the sole registered name)")
		addr         = flag.String("addr", ":8080", "HTTP listen address")
		batch        = flag.Int("batch", serve.DefaultMaxBatch, "max queried nodes coalesced per batch window (1 disables batching)")
		batchWait    = flag.Duration("batch-wait", serve.DefaultMaxWait, "max time the first request of a window waits for company (0 = flush as soon as the queue drains)")
		workers      = flag.Int("workers", 0, "parallel worker count (0 = GOMAXPROCS); results are identical for every value")
		maxLoaded    = flag.Int("max-loaded", registry.DefaultMaxLoaded, "max concurrently started model servers (LRU drains idle ones)")
		grace        = flag.Duration("grace", 10*time.Second, "shutdown grace period for in-flight HTTP requests")

		maxPending  = flag.Int("max-pending", serve.DefaultMaxPending, "admission-control budget: max queued nodes per model before sheds (503); negative disables")
		reqTimeout  = flag.Duration("request-timeout", 0, "server-side deadline per predict request (504 past it); 0 disables, explicit client deadlines still apply")
		strictScan  = flag.Bool("strict-scan", false, "fail startup on any unreadable -model-dir artifact instead of quarantining it")
		brkThresh   = flag.Int("breaker-threshold", registry.DefaultBreakerThreshold, "consecutive model failures before the circuit breaker trips; negative disables")
		brkBackoff  = flag.Duration("breaker-backoff", registry.DefaultBreakerBackoff, "initial trip window (doubles per re-trip, jittered, capped by -breaker-max-backoff)")
		brkBackMax  = flag.Duration("breaker-max-backoff", registry.DefaultBreakerMaxBackoff, "upper bound on the breaker trip window")
		readHdrWait = flag.Duration("read-header-timeout", 5*time.Second, "http.Server ReadHeaderTimeout: max wait for request headers (slowloris guard)")
		readWait    = flag.Duration("read-timeout", 30*time.Second, "http.Server ReadTimeout: max wait for a full request read")
		idleWait    = flag.Duration("idle-timeout", 2*time.Minute, "http.Server IdleTimeout: max keep-alive idle time per connection")
	)
	flag.Parse()
	parallel.SetWorkers(*workers)
	if *ckptPath == "" && *modelDir == "" {
		fmt.Fprintln(os.Stderr, "missing -ckpt or -model-dir")
		flag.Usage()
		os.Exit(2)
	}

	reg := registry.New(registry.Options{
		Serve: serve.Options{
			MaxBatch:       *batch,
			MaxWait:        *batchWait,
			MaxPending:     *maxPending,
			RequestTimeout: *reqTimeout,
		},
		MaxLoaded:    *maxLoaded,
		DefaultModel: *defaultModel,
		LenientScan:  !*strictScan,
		Breaker: registry.BreakerOptions{
			Threshold:  *brkThresh,
			Backoff:    *brkBackoff,
			MaxBackoff: *brkBackMax,
		},
	})
	start := time.Now()
	if *modelDir != "" {
		if _, err := reg.LoadDir(*modelDir); err != nil {
			log.Fatal(err)
		}
		for _, q := range reg.Quarantined() {
			log.Printf("! quarantined %s (%s): %s", q.Path, q.Reason, q.Error)
		}
	}
	if *ckptPath != "" {
		if _, err := reg.AddFile(*ckptPath); err != nil {
			log.Fatal(err)
		}
	}
	infos := reg.List()
	for _, info := range infos {
		active := " "
		if info.Active {
			active = "*"
		}
		log.Printf("%s %s@%d  %-5s %d nodes / %d classes / %d params (%s)",
			active, info.Name, info.Version, info.Arch, info.Nodes, info.Classes,
			info.Params, info.Path)
	}
	log.Printf("registered %d artifacts in %v (max %d loaded, batch window: %d nodes / %v)",
		len(infos), time.Since(start).Round(time.Millisecond), *maxLoaded, *batch, *batchWait)

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           reg.Handler(),
		ReadHeaderTimeout: *readHdrWait,
		ReadTimeout:       *readWait,
		IdleTimeout:       *idleWait,
	}
	ctx, cancel := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer cancel()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("listening on %s", *addr)

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}

	// Graceful shutdown: stop accepting, give in-flight HTTP requests a
	// deadline, then drain every model's batch queue via the registry.
	log.Printf("shutting down (grace %v)", *grace)
	shutCtx, shutCancel := context.WithTimeout(context.Background(), *grace)
	defer shutCancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("shutdown: %v", err)
	}
	reg.Close()
	log.Printf("drained; bye")
}
