// Topology heterogeneity walkthrough: reproduce the paper's motivating
// analysis (Fig. 2 / Fig. 7) on one graph. The example applies both data
// simulation strategies, quantifies the per-client topology divergence that
// defines the structure Non-iid challenge, and shows how AdaFGL's Homophily
// Confidence Score tracks the injected topology per client.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/federated"
	"repro/internal/matrix"
	"repro/internal/models"
	"repro/internal/parallel"
	"repro/internal/partition"
	"repro/internal/sparse"
)

func main() {
	workers := flag.Int("workers", 0, "parallel worker count (0 = GOMAXPROCS); results are identical for every value")
	gemmTiles := flag.String("gemm-tiles", "", "blocked GEMM tile sizes \"MC,KC,NC\" (empty = engine defaults); affects speed only (outputs stay within 1e-12)")
	spmmPanel := flag.Int("spmm-panel", 0, "blocked SpMM panel width in sparse columns (0 = engine default); affects speed only (results are bit-identical)")
	flag.Parse()
	parallel.SetWorkers(*workers)
	if err := matrix.SetTilingSpec(*gemmTiles); err != nil {
		log.Fatal(err)
	}
	if *spmmPanel > 0 {
		sparse.SetBlocking(sparse.Blocking{Panel: *spmmPanel})
	}

	spec, err := datasets.ByName("Cora")
	if err != nil {
		log.Fatal(err)
	}
	g := datasets.GenerateScaled(spec, 0.5, 11)
	const clients = 6

	fmt.Println("== community split (Louvain): topology is consistent ==")
	comm := partition.CommunitySplit(g.Clone(), clients, rand.New(rand.NewSource(1)))
	printTopology(comm)

	fmt.Println("\n== structure Non-iid split (Metis + injection): topology diverges ==")
	noniid := partition.StructureNonIIDSplit(g.Clone(), clients, partition.DefaultNonIID(), rand.New(rand.NewSource(2)))
	printTopology(noniid)
	for i, inj := range noniid.Injected {
		kind := "homophilous"
		if inj < 0 {
			kind = "heterophilous"
		}
		fmt.Printf("  client %d received %s injection\n", i, kind)
	}

	// AdaFGL on the divergent federation: HCS adapts per client.
	cfg := models.DefaultConfig()
	cfg.Hidden = 32
	cfg.Dropout = 0
	fed := federated.DefaultOptions()
	fed.Rounds = 25
	fed.LocalEpochs = 3

	ada := core.New()
	ada.Opt.Epochs = 60
	res, err := ada.Run(noniid.Subgraphs, cfg, fed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nAdaFGL weighted accuracy under structure Non-iid: %.3f\n", res.TestAcc)
	fmt.Println("HCS vs true homophily per client (Fig. 7 view):")
	for i, r := range ada.Reports {
		fmt.Printf("  client %d: HCS %.2f | edge homophily %.2f | acc %.3f\n",
			i, r.HCS, r.EdgeHomophily, r.TestAccuracy)
	}
}

func printTopology(cd *partition.ClientData) {
	for i, sub := range cd.Subgraphs {
		fmt.Printf("  client %d: %4d nodes, homophily node %.3f edge %.3f, labels %v\n",
			i, sub.N, sub.NodeHomophily(), sub.EdgeHomophily(), sub.LabelDistribution())
	}
}
