// Chaos demo: federation under realistic failure. One named scenario from
// the scenario registry (churn, crash-and-rejoin, byzantine arms, ...) is
// compiled onto the async engine's fault schedule and run with AdaFGL and a
// FedGCN reference, under plain FedAvg and under a robust aggregator, against
// the fault-free steady baseline — showing how much each method loses to the
// failure and how much the robust aggregator claws back. Every run is seeded
// and bit-reproducible for any -workers value.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"strings"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/federated"
	"repro/internal/fgl"
	"repro/internal/graph"
	"repro/internal/models"
	"repro/internal/parallel"
	"repro/internal/partition"
	"repro/internal/scenario"
)

func main() {
	workers := flag.Int("workers", 0, "parallel worker count (0 = GOMAXPROCS); results are identical for every value")
	spec := flag.String("scenario", "byz-scale:factor=10", "failure scenario spec (see the roster printed at startup)")
	robust := flag.String("robust", "median", "robust aggregator for the mitigation arm: median or trim")
	trimFrac := flag.Float64("trim-frac", 0.2, "trimmed-mean fraction dropped per side when -robust trim")
	clip := flag.Float64("clip", 0, "L2 update-norm clipping bound applied in the mitigation arm (0 = off)")
	clients := flag.Int("clients", 5, "federation size")
	rounds := flag.Int("rounds", 15, "federated rounds")
	factor := flag.Float64("factor", 0.3, "dataset scale factor")
	seed := flag.Int64("seed", 1, "base seed")
	flag.Parse()
	parallel.SetWorkers(*workers)

	agg, err := federated.ParseAggregator(*robust)
	if err != nil {
		log.Fatal(err)
	}
	mitigation := federated.RobustOptions{Aggregator: agg, ClipNorm: *clip}
	if agg == federated.AggTrimmedMean {
		mitigation.TrimFrac = *trimFrac
	}

	fmt.Println("== chaos demo: federation under realistic failure ==")
	fmt.Println("scenario roster:")
	for _, name := range scenario.Names() {
		sc, err := scenario.Parse(name)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-14s %s\n", name, sc.Title)
	}

	sc, err := scenario.Parse(*spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrunning %q on Cora (factor %.2f, %d clients, %d rounds, seed %d)\n",
		sc.Spec(), *factor, *clients, *rounds, *seed)

	dsSpec, err := datasets.ByName("Cora")
	if err != nil {
		log.Fatal(err)
	}
	newSubs := func() []*graph.Graph {
		g := datasets.GenerateScaled(dsSpec, *factor, *seed)
		return partition.CommunitySplit(g, *clients, rand.New(rand.NewSource(*seed+101))).Subgraphs
	}
	cfg := models.DefaultConfig()
	cfg.Hidden = 32
	cfg.Dropout = 0

	run := func(applyScenario bool, ro federated.RobustOptions, methodName string) *federated.Result {
		subs := newSubs()
		opt := federated.DefaultOptions()
		opt.Rounds = *rounds
		opt.LocalEpochs = 2
		opt.Seed = *seed
		if applyScenario {
			if err := sc.Apply(subs, &opt); err != nil {
				log.Fatal(err)
			}
		}
		opt.Robust = ro
		var m interface {
			Run([]*graph.Graph, models.Config, federated.Options) (*federated.Result, error)
		}
		if methodName == "AdaFGL" {
			a := core.New()
			a.Opt.Epochs = 60
			m = a
		} else {
			m = fgl.FedModel{Arch: "GCN", Correction: 10}
		}
		res, err := m.Run(subs, cfg, opt)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	type arm struct {
		label    string
		scenario bool
		ro       federated.RobustOptions
	}
	arms := []arm{
		{"steady / fedavg", false, federated.RobustOptions{}},
		{sc.Name + " / fedavg", true, federated.RobustOptions{}},
		{sc.Name + " / " + agg.String(), true, mitigation},
	}
	fmt.Printf("\n%-28s %8s %8s\n", "arm", "AdaFGL", "FedGCN")
	acc := make(map[string][2]float64, len(arms))
	for _, a := range arms {
		ada := run(a.scenario, a.ro, "AdaFGL")
		base := run(a.scenario, a.ro, "FedGCN")
		acc[a.label] = [2]float64{ada.TestAcc, base.TestAcc}
		extra := ""
		if a.scenario && ada.DroppedUpdates+ada.StragglerUpdates > 0 {
			extra = fmt.Sprintf("   (adafgl ledger: %d dispatched = %d committed + %d dropped + %d straggler)",
				ada.DispatchedUpdates, ada.CommittedUpdates, ada.DroppedUpdates, ada.StragglerUpdates)
		}
		fmt.Printf("%-28s %8.3f %8.3f%s\n", a.label, ada.TestAcc, base.TestAcc, extra)
	}

	steady, faulted, mitigated := acc[arms[0].label], acc[arms[1].label], acc[arms[2].label]
	dAda, dBase := steady[0]-faulted[0], steady[1]-faulted[1]
	fmt.Printf("\ndegradation under %s (fedavg): AdaFGL %.1f pts, FedGCN %.1f pts",
		sc.Name, dAda*100, dBase*100)
	if dAda < dBase {
		fmt.Printf("  -> AdaFGL degrades less (personalized Step-2 recovery)\n")
	} else {
		fmt.Println()
	}
	fmt.Printf("mitigation via %s: AdaFGL %+.1f pts, FedGCN %+.1f pts vs the attacked fedavg arm\n",
		strings.TrimSpace(agg.String()), (mitigated[0]-faulted[0])*100, (mitigated[1]-faulted[1])*100)
}
