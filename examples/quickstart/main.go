// Quickstart: generate a Cora-like benchmark graph, simulate a 5-client
// federation with the community split, and compare AdaFGL against plain
// federated GCN — the minimal end-to-end use of the public pipeline.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/federated"
	"repro/internal/fgl"
	"repro/internal/graph"
	"repro/internal/matrix"
	"repro/internal/models"
	"repro/internal/parallel"
	"repro/internal/partition"
	"repro/internal/sparse"
)

func main() {
	workers := flag.Int("workers", 0, "parallel worker count (0 = GOMAXPROCS); results are identical for every value")
	save := flag.String("save", "", "write the trained AdaFGL Step-1 extractor as a servable checkpoint (feed to cmd/adafgl-serve)")
	gemmTiles := flag.String("gemm-tiles", "", "blocked GEMM tile sizes \"MC,KC,NC\" (empty = engine defaults); affects speed only (outputs stay within 1e-12)")
	spmmPanel := flag.Int("spmm-panel", 0, "blocked SpMM panel width in sparse columns (0 = engine default); affects speed only (results are bit-identical)")
	flag.Parse()
	parallel.SetWorkers(*workers)
	if err := matrix.SetTilingSpec(*gemmTiles); err != nil {
		log.Fatal(err)
	}
	if *spmmPanel > 0 {
		sparse.SetBlocking(sparse.Blocking{Panel: *spmmPanel})
	}

	// 1. Synthesise the global graph (Cora statistics, scaled down).
	spec, err := datasets.ByName("Cora")
	if err != nil {
		log.Fatal(err)
	}
	g := datasets.GenerateScaled(spec, 0.5, 42)
	fmt.Printf("global graph: %d nodes, %d edges, edge homophily %.3f\n",
		g.N, g.M(), g.EdgeHomophily())

	// 2. Simulate the federation: Louvain community split over 5 clients.
	cd := partition.CommunitySplit(g, 5, rand.New(rand.NewSource(7)))
	for i, sub := range cd.Subgraphs {
		fmt.Printf("  client %d: %4d nodes, %5d edges, homophily %.3f\n",
			i, sub.N, sub.M(), sub.EdgeHomophily())
	}

	// 3. Shared training configuration. federated.DefaultOptions is exactly
	// this example's scale (30 rounds x 3 local epochs, full participation);
	// see federated.PaperOptions for the full Sec. IV-A protocol.
	cfg := models.DefaultConfig()
	cfg.Hidden = 32
	cfg.Dropout = 0
	fed := federated.DefaultOptions()

	// 4. Baseline: federated GCN with local correction.
	gcn := fgl.FedModel{Arch: "GCN", Correction: 10}
	resGCN, err := gcn.Run(clone(cd.Subgraphs), cfg, fed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nFedGCN  : weighted test accuracy %.3f\n", resGCN.TestAcc)

	// 5. AdaFGL: Step 1 federated knowledge extractor, Step 2 adaptive
	// personalized propagation per client.
	ada := core.New()
	ada.Opt.Epochs = 60
	resAda, err := ada.Run(clone(cd.Subgraphs), cfg, fed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("AdaFGL  : weighted test accuracy %.3f\n", resAda.TestAcc)
	fmt.Println("\nper-client view (HCS = homophily confidence score):")
	for i, r := range ada.Reports {
		fmt.Printf("  client %d: HCS %.2f, true homophily %.2f, accuracy %.3f\n",
			i, r.HCS, r.EdgeHomophily, r.TestAccuracy)
	}

	// 6. Optionally persist the Step-1 federated knowledge extractor, bound
	// to the full graph, as a servable checkpoint:
	//
	//	go run ./examples/quickstart -save model.ckpt
	//	go run ./cmd/adafgl-serve -ckpt model.ckpt -addr :8080
	//	curl 'localhost:8080/predict?nodes=0,1,2'
	if *save != "" {
		ck, err := checkpoint.FromResult(resAda, ada.Opt.ExtractorArch, cfg, g)
		if err != nil {
			log.Fatal(err)
		}
		if err := checkpoint.Save(*save, ck); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\ncheckpoint written to %s (serve with: go run ./cmd/adafgl-serve -ckpt %s)\n", *save, *save)
	}
}

// clone deep-copies the subgraphs so each method trains from pristine data.
func clone(subs []*graph.Graph) []*graph.Graph {
	out := make([]*graph.Graph, len(subs))
	for i, g := range subs {
		out[i] = g.Clone()
	}
	return out
}
