// Sparse federation: the deployment stress tests of Sec. IV-E — label, edge
// and feature sparsity (Fig. 10) plus partial client participation (Fig. 11)
// — run on one dataset with AdaFGL and a FedGCN reference.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/federated"
	"repro/internal/fgl"
	"repro/internal/graph"
	"repro/internal/matrix"
	"repro/internal/models"
	"repro/internal/parallel"
	"repro/internal/partition"
	"repro/internal/sparse"
)

func main() {
	workers := flag.Int("workers", 0, "parallel worker count (0 = GOMAXPROCS); results are identical for every value")
	gemmTiles := flag.String("gemm-tiles", "", "blocked GEMM tile sizes \"MC,KC,NC\" (empty = engine defaults); affects speed only (outputs stay within 1e-12)")
	spmmPanel := flag.Int("spmm-panel", 0, "blocked SpMM panel width in sparse columns (0 = engine default); affects speed only (results are bit-identical)")
	async := flag.Bool("async", false, "run federated training on the asynchronous staleness-aware aggregation engine")
	asyncK := flag.Int("async-k", 0, "async commit threshold K (0 or >= participants = full synchronous barrier)")
	asyncStaleness := flag.Float64("async-staleness", 0, "async staleness discount α: updates s rounds stale weigh α/(1+s) (0 = 1.0)")
	flag.Parse()
	parallel.SetWorkers(*workers)
	if err := matrix.SetTilingSpec(*gemmTiles); err != nil {
		log.Fatal(err)
	}
	if *spmmPanel > 0 {
		sparse.SetBlocking(sparse.Blocking{Panel: *spmmPanel})
	}

	spec, err := datasets.ByName("Computer")
	if err != nil {
		log.Fatal(err)
	}
	cfg := models.DefaultConfig()
	cfg.Hidden = 32
	cfg.Dropout = 0
	fed := federated.DefaultOptions()
	fed.Rounds = 20
	fed.LocalEpochs = 2
	// The async engine drops the per-round barrier: one 4x-slowed client
	// (simulated) no longer gates every aggregation round.
	fed.Async = federated.AsyncOptions{
		Enabled: *async, MinUpdates: *asyncK, Staleness: *asyncStaleness,
		Speed: &federated.SpeedModel{Slowdown: []float64{4}, Jitter: 0.05, Seed: 1},
	}
	if *async {
		fmt.Println("(async aggregation engine: K-of-N buffered commits, staleness-discounted)")
	}

	fmt.Println("== sparsity sweeps on Computer (structure Non-iid split) ==")
	for _, mode := range []string{"label", "edge", "feature"} {
		fmt.Printf("\n%s sparsity:\n", mode)
		for _, frac := range []float64{0.0, 0.4, 0.8} {
			subs := makeSplit(spec, 5, 3)
			rng := rand.New(rand.NewSource(99))
			for _, sub := range subs {
				switch mode {
				case "label":
					partition.SparsifyLabels(sub, frac, rng)
				case "edge":
					sub.RemoveEdgesRandom(frac, rng)
				case "feature":
					partition.SparsifyFeatures(sub, frac, rng)
				}
			}
			ada := core.New()
			ada.Opt.Epochs = 40
			resA, err := ada.Run(cloneAll(subs), cfg, fed)
			if err != nil {
				log.Fatal(err)
			}
			resG, err := fgl.FedModel{Arch: "GCN", Correction: 10}.Run(cloneAll(subs), cfg, fed)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  frac %.1f: AdaFGL %.3f | FedGCN %.3f\n", frac, resA.TestAcc, resG.TestAcc)
		}
	}

	fmt.Println("\n== sparse client participation (10 clients) ==")
	for _, p := range []float64{0.2, 0.5, 1.0} {
		subs := makeSplit(spec, 10, 5)
		fo := fed
		fo.Participation = p
		ada := core.New()
		ada.Opt.Epochs = 40
		res, err := ada.Run(subs, cfg, fo)
		if err != nil {
			log.Fatal(err)
		}
		if len(res.RoundTime) > 0 {
			fmt.Printf("  participation %.1f: AdaFGL %.3f (sim time %.0f, mean staleness %.2f)\n",
				p, res.TestAcc, res.RoundTime[len(res.RoundTime)-1], res.MeanStaleness)
		} else {
			fmt.Printf("  participation %.1f: AdaFGL %.3f\n", p, res.TestAcc)
		}
	}
}

func makeSplit(spec datasets.Spec, clients int, seed int64) []*graph.Graph {
	g := datasets.GenerateScaled(spec, 0.4, seed)
	cd := partition.StructureNonIIDSplit(g, clients, partition.DefaultNonIID(), rand.New(rand.NewSource(seed)))
	return cd.Subgraphs
}

func cloneAll(subs []*graph.Graph) []*graph.Graph {
	out := make([]*graph.Graph, len(subs))
	for i, g := range subs {
		out[i] = g.Clone()
	}
	return out
}
