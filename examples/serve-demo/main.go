// Serve-demo is the end-to-end field check of the model lifecycle: train a
// federated GCN at quickstart scale, persist it as a checkpoint, rebuild a
// batched inference server from the file, expose it over HTTP on a loopback
// port and fire 1000 concurrent node-classification queries at it — every
// HTTP answer is cross-checked bit-for-bit against the in-process Go API.
// The /metrics endpoint is then scraped and its Prometheus exposition
// validated structurally, with the serving-layer families required present.
// `make serve-demo` runs exactly this.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/datasets"
	"repro/internal/federated"
	"repro/internal/models"
	"repro/internal/parallel"
	"repro/internal/partition"
	"repro/internal/serve"
	"repro/internal/telemetry"
)

// queries is the concurrent load of the field check.
const queries = 1000

func main() {
	workers := flag.Int("workers", 0, "parallel worker count (0 = GOMAXPROCS)")
	batch := flag.Int("batch", serve.DefaultMaxBatch, "serving batch-window node budget")
	flag.Parse()
	parallel.SetWorkers(*workers)

	// 1. Train at quickstart scale.
	spec, err := datasets.ByName("Cora")
	if err != nil {
		log.Fatal(err)
	}
	g := datasets.GenerateScaled(spec, 0.5, 42)
	cd := partition.CommunitySplit(g, 5, rand.New(rand.NewSource(7)))
	cfg := models.DefaultConfig()
	cfg.Hidden = 32
	cfg.Dropout = 0
	clients := federated.BuildClients(cd.Subgraphs, models.Registry["GCN"], cfg, 1)
	opt := federated.DefaultOptions()
	start := time.Now()
	res, err := federated.Run(clients, 2, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained federated GCN over %d nodes in %v (test acc %.3f)\n",
		g.N, time.Since(start).Round(time.Millisecond), res.TestAcc)

	// 2. Persist and reload the checkpoint (the round trip is the point).
	dir, err := os.MkdirTemp("", "adafgl-serve-demo")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "model.ckpt")
	ck, err := checkpoint.FromResult(res, "GCN", cfg, g)
	if err != nil {
		log.Fatal(err)
	}
	if err := checkpoint.Save(path, ck); err != nil {
		log.Fatal(err)
	}
	loaded, err := checkpoint.Load(path)
	if err != nil {
		log.Fatal(err)
	}
	fi, _ := os.Stat(path)
	fmt.Printf("checkpoint: %s (%d bytes), round-tripped\n", path, fi.Size())

	// 3. Serve it over HTTP on a loopback port.
	srv, err := serve.New(loaded, serve.Options{MaxBatch: *batch, MaxWait: 2 * time.Millisecond})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	defer hs.Close()
	fmt.Printf("serving on http://%s\n", ln.Addr())

	// Reference answers via the Go API, one full-graph window (bit-identical
	// to every batched answer by the serving determinism contract).
	all, err := srv.PredictAll()
	if err != nil {
		log.Fatal(err)
	}
	ref := make(map[int]serve.Prediction, len(all))
	for _, p := range all {
		ref[p.Node] = p
	}

	// 4. Fire the concurrent query storm over HTTP and cross-check.
	client := &http.Client{Timeout: 10 * time.Second}
	var wg sync.WaitGroup
	errCh := make(chan error, queries)
	start = time.Now()
	for q := 0; q < queries; q++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			node := (q * 37) % g.N
			resp, err := client.Get(fmt.Sprintf("http://%s/predict?node=%d", ln.Addr(), node))
			if err != nil {
				errCh <- err
				return
			}
			defer resp.Body.Close()
			var pr serve.PredictResponse
			if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
				errCh <- err
				return
			}
			if len(pr.Predictions) != 1 {
				errCh <- fmt.Errorf("node %d: %d predictions", node, len(pr.Predictions))
				return
			}
			got, want := pr.Predictions[0], ref[node]
			if got.Class != want.Class {
				errCh <- fmt.Errorf("node %d: class %d over HTTP, %d in-process", node, got.Class, want.Class)
				return
			}
			for j := range want.Logits {
				if got.Logits[j] != want.Logits[j] {
					errCh <- fmt.Errorf("node %d: logit %d drifted over HTTP", node, j)
					return
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errCh)
	if err := <-errCh; err != nil {
		log.Fatal(err)
	}

	st := srv.Stats()
	fmt.Printf("%d concurrent HTTP queries in %v (%.0f q/s end-to-end)\n",
		queries, elapsed.Round(time.Millisecond), float64(queries)/elapsed.Seconds())
	fmt.Printf("server metrics: %d requests / %d batches (mean batch %.1f), p50 %v, p99 %v\n",
		st.Requests, st.Batches, st.MeanBatch, st.P50.Round(time.Microsecond), st.P99.Round(time.Microsecond))
	fmt.Println("all HTTP answers bit-identical to the in-process API: ok")

	// 5. Scrape /metrics after the storm: the exposition must parse as
	// Prometheus text format and carry the serving-layer families the storm
	// just exercised — a malformed scrape fails the demo.
	resp, err := client.Get(fmt.Sprintf("http://%s/metrics", ln.Addr()))
	if err != nil {
		log.Fatal(err)
	}
	expo, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if err := telemetry.CheckExposition(expo); err != nil {
		log.Fatalf("/metrics exposition malformed: %v", err)
	}
	for _, fam := range []string{
		"adafgl_serve_requests_total",
		"adafgl_serve_batches_total",
		"adafgl_serve_request_latency_seconds",
		"adafgl_parallel_pool_tasks_total",
	} {
		if !telemetry.HasFamily(expo, fam) {
			log.Fatalf("/metrics missing family %s", fam)
		}
	}
	fmt.Printf("scraped /metrics: %d bytes, exposition valid, serving families present\n", len(expo))
}
