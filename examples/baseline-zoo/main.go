// Baseline zoo: run every method of the paper's main comparison — six
// federated GNN wrappers, four FGL systems and AdaFGL — on one homophilous
// and one heterophilous dataset under both data simulation strategies,
// printing a miniature Table II.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/federated"
	"repro/internal/fgl"
	"repro/internal/graph"
	"repro/internal/matrix"
	"repro/internal/models"
	"repro/internal/parallel"
	"repro/internal/partition"
	"repro/internal/sparse"
)

func main() {
	workers := flag.Int("workers", 0, "parallel worker count (0 = GOMAXPROCS); results are identical for every value")
	gemmTiles := flag.String("gemm-tiles", "", "blocked GEMM tile sizes \"MC,KC,NC\" (empty = engine defaults); affects speed only (outputs stay within 1e-12)")
	spmmPanel := flag.Int("spmm-panel", 0, "blocked SpMM panel width in sparse columns (0 = engine default); affects speed only (results are bit-identical)")
	flag.Parse()
	parallel.SetWorkers(*workers)
	if err := matrix.SetTilingSpec(*gemmTiles); err != nil {
		log.Fatal(err)
	}
	if *spmmPanel > 0 {
		sparse.SetBlocking(sparse.Blocking{Panel: *spmmPanel})
	}

	cfg := models.DefaultConfig()
	cfg.Hidden = 32
	cfg.Dropout = 0
	fed := federated.DefaultOptions()
	fed.Rounds = 20
	fed.LocalEpochs = 2

	methods := []string{"GCN", "GCNII", "GAMLP", "GGCN", "GloGNN", "GPRGNN",
		"FedGL", "GCFL+", "FedSage+", "FED-PUB", "AdaFGL"}

	for _, ds := range []string{"Cora", "Chameleon"} {
		for _, noniid := range []bool{false, true} {
			splitName := "community"
			if noniid {
				splitName = "structure Non-iid"
			}
			fmt.Printf("\n== %s — %s split ==\n", ds, splitName)
			subs := makeSplit(ds, 5, noniid, 7)
			for _, name := range methods {
				res, err := runMethod(name, cloneAll(subs), cfg, fed)
				if err != nil {
					log.Fatal(err)
				}
				fmt.Printf("  %-10s %.3f\n", name, res.TestAcc)
			}
		}
	}
}

func runMethod(name string, subs []*graph.Graph, cfg models.Config, fed federated.Options) (*federated.Result, error) {
	if name == "AdaFGL" {
		ada := core.New()
		ada.Opt.Epochs = 40
		return ada.Run(subs, cfg, fed)
	}
	m, err := fgl.MethodByName(name)
	if err != nil {
		return nil, err
	}
	return m.Run(subs, cfg, fed)
}

func makeSplit(name string, clients int, noniid bool, seed int64) []*graph.Graph {
	spec, err := datasets.ByName(name)
	if err != nil {
		log.Fatal(err)
	}
	g := datasets.GenerateScaled(spec, 0.35, seed)
	rng := rand.New(rand.NewSource(seed))
	if noniid {
		return partition.StructureNonIIDSplit(g, clients, partition.DefaultNonIID(), rng).Subgraphs
	}
	return partition.CommunitySplit(g, clients, rng).Subgraphs
}

func cloneAll(subs []*graph.Graph) []*graph.Graph {
	out := make([]*graph.Graph, len(subs))
	for i, g := range subs {
		out[i] = g.Clone()
	}
	return out
}
