// Model-zoo is the end-to-end field check of the multi-model serving
// lifecycle: train two versions of a baseline plus the AdaFGL extractor on
// one shared graph, persist them as name@version checkpoint artifacts, scan
// the directory into a model registry, expose the versioned v1 HTTP API on a
// loopback port, and drive it like an operator would — list the zoo, query
// pinned and active versions, hot-swap the baseline under concurrent load
// (asserting zero dropped or cross-wired answers), and run a live A/B split
// of baseline vs AdaFGL with the per-arm accuracy report. `make zoo-demo`
// runs exactly this.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/federated"
	"repro/internal/graph"
	"repro/internal/models"
	"repro/internal/parallel"
	"repro/internal/partition"
	"repro/internal/registry"
	"repro/internal/serve"
)

// swapLoad is the concurrent query load held on the model while its active
// version flips.
const swapLoad = 32

func main() {
	workers := flag.Int("workers", 0, "parallel worker count (0 = GOMAXPROCS)")
	flag.Parse()
	parallel.SetWorkers(*workers)

	// 1. One shared graph so every model answers the same nodes.
	spec, err := datasets.ByName("Cora")
	if err != nil {
		log.Fatal(err)
	}
	g := datasets.GenerateScaled(spec, 0.5, 42)
	cd := partition.CommunitySplit(g, 5, rand.New(rand.NewSource(7)))
	cfg := models.DefaultConfig()
	cfg.Hidden = 32
	cfg.Dropout = 0

	// 2. Train the zoo: two baseline versions (different training streams —
	// a version line), plus the AdaFGL Step-1 extractor.
	dir, err := os.MkdirTemp("", "model-zoo-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	start := time.Now()
	trainBaseline := func(version int, seed int64) {
		clients := federated.BuildClients(cloneSubs(cd.Subgraphs), models.Registry["GCN"], cfg, seed)
		res, err := federated.Run(clients, seed+1, federated.DefaultOptions())
		if err != nil {
			log.Fatal(err)
		}
		ck, err := checkpoint.FromResult(res, "GCN", cfg, g)
		if err != nil {
			log.Fatal(err)
		}
		file := filepath.Join(dir, fmt.Sprintf("baseline@%d.ckpt", version))
		if err := checkpoint.Save(file, ck); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("trained baseline@%d (seed %d): test acc %.3f\n", version, seed, res.TestAcc)
	}
	trainBaseline(1, 1)
	trainBaseline(2, 11)
	ada := core.New()
	ada.Opt.Epochs = 60
	resAda, err := ada.Run(cloneSubs(cd.Subgraphs), cfg, federated.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	ckAda, err := checkpoint.FromResult(resAda, ada.Opt.ExtractorArch, cfg, g)
	if err != nil {
		log.Fatal(err)
	}
	if err := checkpoint.Save(filepath.Join(dir, "adafgl@1.ckpt"), ckAda); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained adafgl@1: test acc %.3f\n", resAda.TestAcc)
	fmt.Printf("zoo written to %s in %v\n\n", dir, time.Since(start).Round(time.Millisecond))

	// 3. Scan the artifact directory into a registry and expose the v1 API.
	reg := registry.New(registry.Options{
		Serve:        serve.Options{MaxBatch: 64, MaxWait: 500 * time.Microsecond},
		DefaultModel: "baseline",
	})
	defer reg.Close()
	if _, err := reg.LoadDir(dir); err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Handler: reg.Handler()}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()
	base := "http://" + ln.Addr().String()
	fmt.Printf("v1 API listening on %s\n", base)

	// 4. Operator tour: list the zoo, query the active and a pinned version.
	var list struct{ Models []registry.ModelInfo }
	getJSON(base+"/v1/models", &list)
	for _, m := range list.Models {
		mark := " "
		if m.Active {
			mark = "*"
		}
		fmt.Printf("%s %s@%d  %-4s %d nodes / %d params\n", mark, m.Name, m.Version, m.Arch, m.Nodes, m.Params)
	}
	var pr serve.PredictResponse
	getJSON(base+"/v1/models/baseline/predict?nodes=0,1,2", &pr)
	fmt.Printf("active baseline answers: %v\n", classes(pr))
	getJSON(base+"/v1/models/baseline@2/predict?nodes=0,1,2", &pr)
	fmt.Printf("pinned baseline@2 answers: %v\n", classes(pr))

	// Legacy flat route still answers (deprecated, Link points at the v1
	// successor).
	resp, err := http.Get(base + "/predict?node=0")
	if err != nil {
		log.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	fmt.Printf("legacy /predict: %d (Deprecation: %s, successor %s)\n\n",
		resp.StatusCode, resp.Header.Get("Deprecation"), resp.Header.Get("Link"))

	// 5. Hot-swap baseline 1 -> 2 under concurrent load: every in-flight
	// answer must be a complete answer from exactly one version.
	ref1 := refAll(reg, "baseline@1")
	ref2 := refAll(reg, "baseline@2")
	var wg sync.WaitGroup
	var mixed, failed atomic.Int64
	stop := make(chan struct{})
	for w := 0; w < swapLoad; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				node := rng.Intn(g.N)
				var pr serve.PredictResponse
				if err := getJSONErr(fmt.Sprintf("%s/v1/models/baseline/predict?node=%d", base, node), &pr); err != nil {
					failed.Add(1)
					return
				}
				p := pr.Predictions[0]
				if !samePred(p, ref1[node]) && !samePred(p, ref2[node]) {
					mixed.Add(1)
					return
				}
			}
		}(w)
	}
	time.Sleep(20 * time.Millisecond)
	swapStart := time.Now()
	var swapped struct {
		From int `json:"from"`
		To   int `json:"to"`
	}
	postJSON(base+"/v1/models/baseline/swap", map[string]int{"version": 2}, &swapped)
	time.Sleep(20 * time.Millisecond)
	close(stop)
	wg.Wait()
	if n := failed.Load(); n > 0 {
		log.Fatalf("FAIL: %d requests failed during the swap", n)
	}
	if n := mixed.Load(); n > 0 {
		log.Fatalf("FAIL: %d answers matched neither version bit-for-bit", n)
	}
	fmt.Printf("hot-swapped baseline %d -> %d in %v under %d concurrent clients (zero failures, all answers bit-exact)\n\n",
		swapped.From, swapped.To, time.Since(swapStart).Round(time.Millisecond), swapLoad)

	// 6. Live A/B: baseline (control) vs AdaFGL (candidate), then the report.
	postJSON(base+"/v1/ab", registry.ABConfig{Control: "baseline", Candidate: "adafgl", Fraction: 0.5, Salt: 42}, nil)
	for at := 0; at < g.N; at += 64 {
		hi := at + 64
		if hi > g.N {
			hi = g.N
		}
		nodes := make([]int, hi-at)
		for i := range nodes {
			nodes[i] = at + i
		}
		body, _ := json.Marshal(serve.PredictRequest{Nodes: nodes})
		resp, err := http.Post(base+"/v1/models/baseline/predict", "application/json", bytes.NewReader(body))
		if err != nil {
			log.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	var rep registry.ABReport
	getJSON(base+"/v1/ab/report", &rep)
	fmt.Printf("A/B %s vs %s at fraction %.2f:\n", rep.Config.Control, rep.Config.Candidate, rep.Config.Fraction)
	fmt.Printf("  control   %-8s acc=%.3f over %d nodes\n", rep.Control.Model, rep.Control.Stats.Accuracy, rep.Control.Stats.Labelled)
	fmt.Printf("  candidate %-8s acc=%.3f over %d nodes\n", rep.Candidate.Model, rep.Candidate.Stats.Accuracy, rep.Candidate.Stats.Labelled)
	fmt.Printf("  delta: candidate %+.3f accuracy\n", rep.Candidate.Stats.Accuracy-rep.Control.Stats.Accuracy)
	fmt.Println("\nmodel-zoo demo ok")
}

// refAll computes the bit-exact reference answer of every node on one pinned
// version through the in-process API.
func refAll(reg *registry.Registry, ref string) []serve.Prediction {
	h, err := reg.Acquire(ref)
	if err != nil {
		log.Fatal(err)
	}
	defer h.Release()
	nodes := make([]int, h.Server().Nodes())
	for i := range nodes {
		nodes[i] = i
	}
	preds, err := h.Server().Predict(nodes)
	if err != nil {
		log.Fatal(err)
	}
	return preds
}

// samePred reports bitwise prediction equality.
func samePred(a, b serve.Prediction) bool {
	if a.Node != b.Node || a.Class != b.Class || len(a.Logits) != len(b.Logits) {
		return false
	}
	for i := range a.Logits {
		if a.Logits[i] != b.Logits[i] {
			return false
		}
	}
	return true
}

// classes renders the predicted class per node compactly.
func classes(pr serve.PredictResponse) []int {
	out := make([]int, len(pr.Predictions))
	for i, p := range pr.Predictions {
		out[i] = p.Class
	}
	return out
}

// getJSON fetches and decodes a URL, fataling on any failure.
func getJSON(url string, v any) {
	if err := getJSONErr(url, v); err != nil {
		log.Fatal(err)
	}
}

// getJSONErr fetches and decodes a URL, requiring status 200.
func getJSONErr(url string, v any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %d: %s", url, resp.StatusCode, body)
	}
	if v == nil {
		return nil
	}
	return json.Unmarshal(body, v)
}

// postJSON posts a JSON body and decodes the 200 answer into out (nil skips).
func postJSON(url string, in, out any) {
	b, _ := json.Marshal(in)
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("POST %s: %d: %s", url, resp.StatusCode, body)
	}
	if out != nil {
		if err := json.Unmarshal(body, out); err != nil {
			log.Fatal(err)
		}
	}
}

// cloneSubs deep-copies the subgraphs so each training run starts pristine.
func cloneSubs(subs []*graph.Graph) []*graph.Graph {
	out := make([]*graph.Graph, len(subs))
	for i, g := range subs {
		out[i] = g.Clone()
	}
	return out
}
